// Microbenchmarks (google-benchmark) of the expensive kernels, supporting
// the paper's §5 runtime claims:
//   * "a significant portion of the total execution time of min-area
//     retiming is spent on computing the clocking constraints" — compare
//     BM_WdMatrices + BM_BuildConstraints against BM_WeightedMinArea;
//   * "solving the minimum-cost flow problem is known to be quite
//     efficient" / "the time complexity of this heuristic is in the same
//     order as that of min-area retiming" — BM_MinArea vs BM_LacLoop;
//   * constraint pruning is what keeps repeated flow solves cheap —
//     BM_BuildConstraints/pruned vs /full.
#include <benchmark/benchmark.h>

#include <string>

#include "base/rng.h"
#include "bench_io.h"
#include "bench89/suite.h"
#include "netlist/generator.h"
#include "partition/fm.h"
#include "planner/interconnect_planner.h"
#include "retime/constraints.h"
#include "retime/lac_retimer.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "tests/test_util.h"

namespace {

using namespace lac;

retime::RetimingGraph make_graph(int n) {
  Rng rng(12345);
  return test::random_retiming_graph(rng, n, 2 * n, 2);
}

void BM_WdMatrices(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto wd = retime::WdMatrices::compute(g);
    benchmark::DoNotOptimize(wd.t_init_ps());
  }
}
BENCHMARK(BM_WdMatrices)->Arg(100)->Arg(300)->Arg(900);

void BM_BuildConstraints_Pruned(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto wd = retime::WdMatrices::compute(g);
  const auto t = (wd.max_vertex_delay_decips() + retime::to_decips(wd.t_init_ps())) / 2;
  for (auto _ : state) {
    auto cs = retime::build_constraints(g, wd, t, {.prune = true});
    benchmark::DoNotOptimize(cs.total());
  }
}
BENCHMARK(BM_BuildConstraints_Pruned)->Arg(100)->Arg(300)->Arg(900);

void BM_BuildConstraints_Full(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto wd = retime::WdMatrices::compute(g);
  const auto t = (wd.max_vertex_delay_decips() + retime::to_decips(wd.t_init_ps())) / 2;
  for (auto _ : state) {
    auto cs = retime::build_constraints(g, wd, t, {.prune = false});
    benchmark::DoNotOptimize(cs.total());
  }
}
BENCHMARK(BM_BuildConstraints_Full)->Arg(100)->Arg(300)->Arg(900);

void BM_WeightedMinArea(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto wd = retime::WdMatrices::compute(g);
  const auto t = (wd.max_vertex_delay_decips() + retime::to_decips(wd.t_init_ps())) / 2;
  const auto cs = retime::build_constraints(g, wd, t);
  std::vector<double> weights(static_cast<std::size_t>(g.num_vertices()), 1.0);
  for (auto _ : state) {
    auto r = retime::weighted_min_area_retiming(g, cs, weights);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WeightedMinArea)->Arg(100)->Arg(300)->Arg(900);

void BM_MinPeriod(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto wd = retime::WdMatrices::compute(g);
  for (auto _ : state) {
    auto t = retime::min_period_retiming(g, wd);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_MinPeriod)->Arg(100)->Arg(300);

void BM_FmPartition(benchmark::State& state) {
  netlist::GenSpec spec;
  spec.num_gates = static_cast<int>(state.range(0));
  spec.num_dffs = spec.num_gates / 10;
  spec.seed = 3;
  const auto nl = netlist::generate_netlist(spec);
  std::vector<double> area(static_cast<std::size_t>(nl.num_cells()), 1.0);
  for (auto _ : state) {
    auto res = partition::partition_netlist(nl, area, 9);
    benchmark::DoNotOptimize(res.cut);
  }
}
BENCHMARK(BM_FmPartition)->Arg(200)->Arg(600);

void BM_FullPlan(benchmark::State& state) {
  const auto& entry = bench89::table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto nl = bench89::load(entry);
  planner::PlannerConfig cfg;
  cfg.run.seed = 7;
  cfg.num_blocks = entry.recommended_blocks;
  cfg.fp_opt.sa_moves_per_block = 150;
  planner::InterconnectPlanner planner(cfg);
  for (auto _ : state) {
    auto res = planner.plan(nl);
    benchmark::DoNotOptimize(res.lac.report.n_foa);
  }
  state.SetLabel(entry.spec.name);
}
BENCHMARK(BM_FullPlan)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): an optional leading positional
// argument selects the report output directory (shifted away before
// google-benchmark parses its own --benchmark_* flags), and an
// observability run report is written after the benchmarks finish.
int main(int argc, char** argv) {
  std::string out = ".";
  if (argc > 1 && argv[1][0] != '-') {
    out = argv[1];
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lac::bench_io::write_bench_report(out, "runtime_scaling");
  return 0;
}
