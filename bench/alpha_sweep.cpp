// Ablation for the paper's §4.2 claim: "Experimental results indicated
// that a value [of alpha] around 0.2 typically produces the best results."
// Sweeps the re-weighting coefficient over the LAC loop on a subset of the
// suite and reports remaining violations, total flip-flops and solve
// counts per alpha, aggregated across circuits.
#include <cstdio>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli = bench_io::parse_cli(argc, argv, "alpha_sweep");
  const std::string& out = cli.out_dir;
  const base::ExecPolicy exec = cli.exec();

  const std::vector<double> alphas{0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0};
  const std::vector<const char*> circuits{"y386", "y526", "y838", "y1269",
                                          "y1423"};

  std::printf("=== Alpha sweep (LAC re-weighting coefficient) ===\n\n");
  // Every (alpha, circuit) pair is an independent planning run; fan them
  // all out and aggregate per alpha in sweep order afterwards.
  struct Outcome {
    long long foa = 0, nf = 0;
    double nwr = 0.0;
  };
  const auto outcomes = base::parallel_map<Outcome>(
      exec, alphas.size() * circuits.size(), [&](std::size_t j) {
        const double alpha = alphas[j / circuits.size()];
        const auto& entry = bench89::entry_by_name(circuits[j % circuits.size()]);
        const auto nl = bench89::load(entry);
        planner::PlannerConfig cfg;
        cfg.run.seed = 7;
        cfg.run.exec = exec;
        cfg.num_blocks = entry.recommended_blocks;
        cfg.lac_opt.alpha = alpha;
        const planner::InterconnectPlanner planner(cfg);
        const auto res = planner.plan(nl);
        return Outcome{res.lac.report.n_foa, res.lac.report.n_f,
                       static_cast<double>(res.lac.n_wr)};
      });

  TextTable table({"alpha", "sum N_FOA", "sum N_F", "avg N_wr"});
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    long long foa = 0, nf = 0;
    double nwr = 0.0;
    for (std::size_t c = 0; c < circuits.size(); ++c) {
      const Outcome& o = outcomes[a * circuits.size() + c];
      foa += o.foa;
      nf += o.nf;
      nwr += o.nwr;
    }
    table.add_row({format_double(alphas[a], 2), std::to_string(foa),
                   std::to_string(nf),
                   format_double(nwr / static_cast<double>(circuits.size()), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expected shape: alpha = 0 degenerates to plain min-area\n"
              "retiming (weights never change), very large alpha overshoots;\n"
              "values around 0.2 give the fewest remaining violations.\n");
  bench_io::write_bench_report(out, "alpha_sweep");
  return 0;
}
