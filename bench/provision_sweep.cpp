// Calibration ablation (DESIGN.md §6b): how the violation regime depends
// on how much of the register demand the floorplan provisions for.  The
// paper attributes its violations to block areas estimated "based on the
// original netlist without any physical information"; the provisioning
// factor operationalises that underestimate.
//
//   factor 1.0  — blocks sized for the full per-edge register demand:
//                 almost nothing violates, LAC trivially succeeds;
//   factor ~0.6 — the paper's regime: most circuits violate under plain
//                 min-area retiming and LAC removes the bulk;
//   factor <0.4 — violations become structural (no placement fits) and
//                 even LAC + floorplan expansion struggles — the s1269
//                 pathology of the paper.
#include <cstdio>
#include <string>

#include "base/parallel.h"
#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli = bench_io::parse_cli(argc, argv, "provision_sweep");
  const std::string& out = cli.out_dir;
  const base::ExecPolicy exec = cli.exec();

  const std::vector<const char*> circuits{"y298", "y526", "y838", "y1269"};
  const std::vector<double> provisions{1.0, 0.8, 0.6, 0.5, 0.4};
  std::printf("=== Register-provisioning sweep ===\n\n");
  // Every (provision, circuit) pair plans independently; sums are
  // aggregated per provision in sweep order afterwards.
  struct Outcome {
    long long ma = 0, lac = 0;
  };
  const auto outcomes = base::parallel_map<Outcome>(
      exec, provisions.size() * circuits.size(), [&](std::size_t j) {
        const auto& entry =
            bench89::entry_by_name(circuits[j % circuits.size()]);
        const auto nl = bench89::load(entry);
        planner::PlannerConfig cfg;
        cfg.run.seed = 7;
        cfg.run.exec = exec;
        cfg.num_blocks = entry.recommended_blocks;
        cfg.dff_provision_factor = provisions[j / circuits.size()];
        const planner::InterconnectPlanner planner(cfg);
        const auto res = planner.plan(nl);
        return Outcome{res.min_area.report.n_foa, res.lac.report.n_foa};
      });

  TextTable table({"provision", "sum MA:N_FOA", "sum LAC:N_FOA", "decrease"});
  for (std::size_t p = 0; p < provisions.size(); ++p) {
    long long ma = 0, lac = 0;
    for (std::size_t c = 0; c < circuits.size(); ++c) {
      ma += outcomes[p * circuits.size() + c].ma;
      lac += outcomes[p * circuits.size() + c].lac;
    }
    table.add_row({format_double(provisions[p], 2), std::to_string(ma),
                   std::to_string(lac),
                   ma > 0 ? format_double(100.0 * static_cast<double>(ma - lac) /
                                              static_cast<double>(ma),
                                          0) + "%"
                          : "N/A"});
  }
  std::printf("%s\n", table.to_string().c_str());
  bench_io::write_bench_report(out, "provision_sweep");
  return 0;
}
